#include "er/similarity.h"

#include <algorithm>

#include "text/similarity_kernels.h"
#include "text/token_set.h"
#include "util/status.h"

namespace terids {

namespace {

/// Stack budget for the hot kernel's per-attribute bound buffer. Schemas in
/// this library never exceed 32 attributes (tuple/record.h); wider ones
/// fall back to the plain exact path rather than spilling to the heap.
constexpr int kMaxAttrs = 64;

}  // namespace

double RecordSimilarity(const Record& a, const Record& b) {
  TERIDS_CHECK(a.num_attributes() == b.num_attributes());
  double sim = 0.0;
  for (int k = 0; k < a.num_attributes(); ++k) {
    const TokenSet& ta =
        a.values[k].missing ? kEmptyTokenSet : a.values[k].tokens;
    const TokenSet& tb =
        b.values[k].missing ? kEmptyTokenSet : b.values[k].tokens;
    sim += JaccardSimilarity(ta, tb);
  }
  return sim;
}

double InstanceSimilarity(const ImputedTuple& a, int inst_a,
                          const ImputedTuple& b, int inst_b) {
  TERIDS_CHECK(a.num_attributes() == b.num_attributes());
  double sim = 0.0;
  for (int k = 0; k < a.num_attributes(); ++k) {
    const TokenView va = a.instance_token_view(inst_a, k);
    const TokenView vb = b.instance_token_view(inst_b, k);
    sim += JaccardFromSpans(va.data, va.len, vb.data, vb.len);
  }
  return sim;
}

bool InstanceSimilarityExceeds(const ImputedTuple& a, int inst_a,
                               const ImputedTuple& b, int inst_b, double gamma,
                               bool signature_filter,
                               SigFilterCounters* counters) {
  const int d = a.num_attributes();
  TERIDS_CHECK(b.num_attributes() == d);
  if (!signature_filter || d > kMaxAttrs) {
    return InstanceSimilarity(a, inst_a, b, inst_b) > gamma;
  }

  // Pass 1: O(d) popcount bounds, no token reads. ub[k] >= the exact
  // per-attribute Jaccard and both sums accumulate in the same order, so
  // rounding is monotone step-by-step and the floating-point exact sum can
  // never exceed the floating-point bound sum: bound <= gamma certifies
  // the exact verdict is false. The bound arithmetic is shared with the
  // executor's batched prefilter (SigFilterCandidates), which reproduces
  // exactly this accumulation.
  const int words = a.token_arena().sig_words();
  TERIDS_CHECK(b.token_arena().sig_words() == words);
  const int sat_threshold = (3 * a.token_arena().sig_bits()) / 4;
  double ub[kMaxAttrs];
  double total_ub = 0.0;
  for (int k = 0; k < d; ++k) {
    const TokenView va = a.instance_token_view(inst_a, k);
    const TokenView vb = b.instance_token_view(inst_b, k);
    const SigPopCounts pops = SigPopCount(va.sig, vb.sig, words);
    ub[k] = SigJaccardUpperBoundFromPops(va.len, vb.len, pops);
    total_ub += ub[k];
    if (counters != nullptr) {
      counters->probes += 2;
      counters->saturated += (pops.a > sat_threshold ? 1u : 0u) +
                             (pops.b > sat_threshold ? 1u : 0u);
    }
  }
  if (total_ub <= gamma) {
    if (counters != nullptr) {
      ++counters->rejects;
    }
    return false;
  }

  // Pass 2: exact merges in attribute order — the same accumulation
  // InstanceSimilarity performs, so the final verdict is bit-identical —
  // with two sound early exits. Accept: the partial exact sum already
  // exceeds gamma (adding the non-negative remaining terms is monotone
  // under rounding, so the final sum is >= the partial). Reject: continue
  // the partial sum with the remaining *bounds* in the same forward order;
  // term-by-term domination + monotone rounding again guarantee the final
  // exact sum cannot exceed that hybrid sum (a subtractively-maintained
  // remainder would not carry this ulp-level guarantee). O(d) per check,
  // negligible next to one merge.
  double sim = 0.0;
  for (int k = 0; k < d; ++k) {
    const TokenView va = a.instance_token_view(inst_a, k);
    const TokenView vb = b.instance_token_view(inst_b, k);
    sim += JaccardFromSpans(va.data, va.len, vb.data, vb.len);
    if (sim > gamma) {
      return true;
    }
    double hybrid = sim;
    for (int j = k + 1; j < d; ++j) {
      hybrid += ub[j];
    }
    if (hybrid <= gamma) {
      return false;
    }
  }
  return sim > gamma;
}

double InstanceDistance(const ImputedTuple& a, int inst_a,
                        const ImputedTuple& b, int inst_b) {
  return static_cast<double>(a.num_attributes()) -
         InstanceSimilarity(a, inst_a, b, inst_b);
}

double HeterogeneousRecordSimilarity(const Record& a, const Record& b) {
  thread_local std::vector<Token> scratch_a;
  thread_local std::vector<Token> scratch_b;
  UnionRecordTokensInto(a, &scratch_a);
  UnionRecordTokensInto(b, &scratch_b);
  return JaccardFromSpans(scratch_a.data(), scratch_a.size(),
                          scratch_b.data(), scratch_b.size());
}

double HeterogeneousRecordSimilarity(const ImputedTuple& a,
                                     const ImputedTuple& b) {
  const TokenView va = a.union_token_view();
  const TokenView vb = b.union_token_view();
  return JaccardFromSpans(va.data, va.len, vb.data, vb.len);
}

}  // namespace terids
