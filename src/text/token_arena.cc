#include "text/token_arena.h"

#include "util/status.h"

namespace terids {

void TokenArena::SetSigBits(int sig_bits) {
  TERIDS_CHECK(ValidSigBits(sig_bits));
  TERIDS_CHECK(ranges_.empty());  // widths cannot be mixed within an arena
  sig_bits_ = sig_bits;
  words_ = SigWords(sig_bits);
}

uint32_t TokenArena::AddRange(const Token* tokens, size_t n) {
  TERIDS_CHECK(tokens_.size() + n <=
               static_cast<size_t>(static_cast<uint32_t>(-1)));
  Range r;
  r.offset = static_cast<uint32_t>(tokens_.size());
  r.len = static_cast<uint32_t>(n);
  tokens_.insert(tokens_.end(), tokens, tokens + n);
  sigs_.resize(sigs_.size() + static_cast<size_t>(words_));
  BuildTokenSignature(tokens_.data() + r.offset, r.len, sig_bits_,
                      sigs_.data() + sigs_.size() -
                          static_cast<size_t>(words_));
  const uint32_t id = static_cast<uint32_t>(ranges_.size());
  ranges_.push_back(r);
  return id;
}

void TokenArena::PushSlot(uint32_t range_id) {
  TERIDS_CHECK(range_id < ranges_.size());
  slot_ranges_.push_back(range_id);
}

void TokenArena::Reserve(size_t tokens, size_t ranges, size_t slots) {
  tokens_.reserve(tokens);
  ranges_.reserve(ranges);
  sigs_.reserve(ranges * static_cast<size_t>(words_));
  slot_ranges_.reserve(slots);
}

}  // namespace terids
