#include "exec/refinement_executor.h"

#include <algorithm>

#include "er/probability.h"
#include "util/status.h"

namespace terids {

RefinementExecutor::RefinementExecutor(int num_threads)
    : pool_(std::make_unique<ThreadPool>(num_threads)) {}

RefinementExecutor::RefinementExecutor(Scheduler* scheduler)
    : scheduler_(scheduler) {
  TERIDS_CHECK(scheduler != nullptr);
}

RefinementExecutor::~RefinementExecutor() = default;

PairEvaluation RefinementExecutor::Evaluate(const Task& task,
                                            bool use_prunings,
                                            bool signature_filter,
                                            double gamma, double alpha) {
  const WindowTuple& cand = *task.candidate;
  if (use_prunings) {
    return EvaluatePair(*task.probe, *task.probe_topic, *cand.tuple,
                        cand.topic, gamma, alpha, signature_filter);
  }
  // Unpruned baselines: every pair is fully refined with the exact
  // probability, matching the sequential unpruned loop bit-for-bit.
  PairEvaluation eval;
  eval.probability =
      ExactProbability(*task.probe, *task.probe_topic, *cand.tuple,
                       cand.topic, gamma, signature_filter);
  eval.outcome = eval.probability > alpha ? PairOutcome::kMatched
                                          : PairOutcome::kRefuted;
  return eval;
}

void RefinementExecutor::Run(const std::vector<Task>& tasks,
                             bool use_prunings, bool signature_filter,
                             double gamma, double alpha,
                             std::vector<PairEvaluation>* evaluations) {
  const int64_t n = static_cast<int64_t>(tasks.size());
  evaluations->resize(tasks.size());
  if (n == 0) {
    return;
  }
  if (num_threads() == 1) {
    for (int64_t i = 0; i < n; ++i) {
      (*evaluations)[i] =
          Evaluate(tasks[i], use_prunings, signature_filter, gamma, alpha);
    }
    return;
  }
  // Contiguous shards, several per worker so an expensive stretch of pairs
  // (deep instance cross products) does not serialize the whole batch.
  const int64_t shard_size = std::max<int64_t>(
      1, n / (static_cast<int64_t>(num_threads()) * 4));
  const int64_t num_shards = (n + shard_size - 1) / shard_size;
  const auto run_shard = [&](int64_t shard) {
    const int64_t begin = shard * shard_size;
    const int64_t end = std::min(n, begin + shard_size);
    for (int64_t i = begin; i < end; ++i) {
      (*evaluations)[i] =
          Evaluate(tasks[i], use_prunings, signature_filter, gamma, alpha);
    }
  };
  if (scheduler_ != nullptr) {
    scheduler_->ParallelFor(ExecPhase::kRefine, num_shards, run_shard);
  } else {
    pool_->ParallelFor(num_shards, run_shard);
  }
}

}  // namespace terids
