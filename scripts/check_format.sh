#!/usr/bin/env bash
# clang-format check over all C++ sources, as run by the CI format-check
# job. Pass --fix to rewrite files in place instead of checking.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=(--dry-run -Werror)
if [[ "${1:-}" == "--fix" ]]; then
  mode=(-i)
fi

if ! command -v clang-format >/dev/null; then
  echo "error: clang-format not installed" >&2
  exit 1
fi

find src tests bench examples \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print0 |
  xargs -0 clang-format "${mode[@]}"
