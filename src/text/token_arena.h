#ifndef TERIDS_TEXT_TOKEN_ARENA_H_
#define TERIDS_TEXT_TOKEN_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "text/similarity_kernels.h"
#include "text/token_dict.h"

namespace terids {

/// A read-only view of one token set inside a TokenArena: a sorted,
/// deduplicated span plus a pointer to its precomputed hashed-bitmap
/// signature (`TokenArena::sig_words()` words wide — 1, 2, or 4 for the
/// 64 / 128 / 256-bit widths of DESIGN.md §11). This is the unit the
/// refinement hot path operates on — sequential memory instead of
/// per-value heap vectors, and an O(words) popcount bound before any
/// merge.
struct TokenView {
  const Token* data = nullptr;
  uint32_t len = 0;
  const uint64_t* sig = nullptr;

  bool empty() const { return len == 0; }
};

/// Flat SoA storage for the token sets of one window-resident tuple
/// (DESIGN.md §9): every distinct token set is appended once into a single
/// contiguous Token buffer (a "range": offset + length), and slots map
/// logical positions — (instance, attribute) cells, plus the cached
/// record-union — onto ranges. Signatures live in their own contiguous
/// word array (one stride of sig_words() per range), so the batched filter
/// sweep reads them as one flat stream. Slots freely alias ranges, so an
/// attribute shared by all instances (or two instances choosing the same
/// imputed value) stores its tokens exactly once while every slot lookup
/// stays O(1).
///
/// The arena is build-once: ranges and slots are appended during tuple
/// construction and never mutated afterwards, which is what makes
/// concurrent refinement reads safe without synchronization.
class TokenArena {
 public:
  static constexpr uint32_t kInvalidRange = static_cast<uint32_t>(-1);

  /// Selects the signature width (64, 128, or 256 bits; default 64, the
  /// PR-5 layout and the equivalence oracle). Must be called before the
  /// first AddRange — widths cannot be mixed within one arena.
  void SetSigBits(int sig_bits);

  int sig_bits() const { return sig_bits_; }
  int sig_words() const { return words_; }

  /// Appends a copy of the sorted, deduplicated span (TokenSet order) and
  /// returns the range id. Signatures are computed here, once per range.
  uint32_t AddRange(const Token* tokens, size_t n);
  uint32_t AddRange(const std::vector<Token>& tokens) {
    return AddRange(tokens.data(), tokens.size());
  }

  /// Appends the next slot, referring to an existing range.
  void PushSlot(uint32_t range_id);

  TokenView slot(size_t i) const { return range(slot_ranges_[i]); }
  TokenView range(uint32_t range_id) const {
    const Range& r = ranges_[range_id];
    return TokenView{tokens_.data() + r.offset, r.len,
                     sigs_.data() + static_cast<size_t>(range_id) *
                                        static_cast<size_t>(words_)};
  }

  size_t num_slots() const { return slot_ranges_.size(); }
  size_t num_ranges() const { return ranges_.size(); }
  size_t total_tokens() const { return tokens_.size(); }

  /// Pre-sizes the buffers (construction-time hint; optional).
  void Reserve(size_t tokens, size_t ranges, size_t slots);

 private:
  struct Range {
    uint32_t offset = 0;
    uint32_t len = 0;
  };

  int sig_bits_ = 64;
  int words_ = 1;
  std::vector<Token> tokens_;
  std::vector<Range> ranges_;
  std::vector<uint64_t> sigs_;         // range id -> words_ signature words
  std::vector<uint32_t> slot_ranges_;  // slot index -> range id
};

}  // namespace terids

#endif  // TERIDS_TEXT_TOKEN_ARENA_H_
