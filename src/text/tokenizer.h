#ifndef TERIDS_TEXT_TOKENIZER_H_
#define TERIDS_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/token_dict.h"
#include "text/token_set.h"

namespace terids {

/// Splits raw attribute text into normalized word tokens.
///
/// Normalization: ASCII lowercase, alphanumeric runs only (punctuation and
/// whitespace are separators). This mirrors the standard preprocessing of
/// the Magellan entity-matching corpora the paper evaluates on.
class Tokenizer {
 public:
  /// `dict` must outlive the tokenizer; tokens are interned into it.
  explicit Tokenizer(TokenDict* dict) : dict_(dict) {}

  /// Tokenizes and interns, returning the deduplicated sorted token set.
  TokenSet Tokenize(std::string_view text) const;

  /// Tokenizes without interning new tokens: words never seen by the
  /// dictionary are dropped. Used for read-only probes (e.g. topic keyword
  /// lookup against a frozen dictionary).
  TokenSet TokenizeFrozen(std::string_view text) const;

  /// Splits into normalized words without interning.
  static std::vector<std::string> SplitWords(std::string_view text);

 private:
  TokenDict* dict_;
};

}  // namespace terids

#endif  // TERIDS_TEXT_TOKENIZER_H_
