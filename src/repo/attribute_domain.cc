#include "repo/attribute_domain.h"

#include "util/hash.h"

namespace terids {

uint64_t AttributeDomain::HashTokens(const TokenSet& tokens) {
  // FNV-1a over the sorted token ids; collisions are resolved by the
  // multimap probe in Find/FindOrAdd.
  uint64_t h = kFnv1aOffsetBasis;
  for (Token t : tokens) {
    h = Fnv1aMix(h, t);
  }
  return h;
}

ValueId AttributeDomain::FindOrAdd(const TokenSet& tokens,
                                   const std::string& text) {
  ValueId existing = Find(tokens);
  if (existing != kInvalidValueId) {
    return existing;
  }
  ValueId id = static_cast<ValueId>(values_.size());
  by_hash_.emplace(HashTokens(tokens), id);
  values_.push_back(tokens);
  texts_.push_back(text);
  frequencies_.push_back(0);
  return id;
}

ValueId AttributeDomain::Find(const TokenSet& tokens) const {
  auto [begin, end] = by_hash_.equal_range(HashTokens(tokens));
  for (auto it = begin; it != end; ++it) {
    if (values_[it->second] == tokens) {
      return it->second;
    }
  }
  return kInvalidValueId;
}

const TokenSet& AttributeDomain::tokens(ValueId id) const {
  TERIDS_CHECK(id < values_.size());
  return values_[id];
}

const std::string& AttributeDomain::text(ValueId id) const {
  TERIDS_CHECK(id < texts_.size());
  return texts_[id];
}

int AttributeDomain::frequency(ValueId id) const {
  TERIDS_CHECK(id < frequencies_.size());
  return frequencies_[id];
}

}  // namespace terids
