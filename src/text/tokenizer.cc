#include "text/tokenizer.h"

#include <cctype>

namespace terids {

std::vector<std::string> Tokenizer::SplitWords(std::string_view text) {
  std::vector<std::string> words;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) {
    words.push_back(std::move(current));
  }
  return words;
}

TokenSet Tokenizer::Tokenize(std::string_view text) const {
  std::vector<Token> tokens;
  for (const std::string& word : SplitWords(text)) {
    tokens.push_back(dict_->Intern(word));
  }
  return TokenSet::FromTokens(std::move(tokens));
}

TokenSet Tokenizer::TokenizeFrozen(std::string_view text) const {
  std::vector<Token> tokens;
  for (const std::string& word : SplitWords(text)) {
    Token t = dict_->Find(word);
    if (t != kInvalidToken) {
      tokens.push_back(t);
    }
  }
  return TokenSet::FromTokens(std::move(tokens));
}

}  // namespace terids
