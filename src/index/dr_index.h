#ifndef TERIDS_INDEX_DR_INDEX_H_
#define TERIDS_INDEX_DR_INDEX_H_

#include <vector>

#include "index/artree.h"
#include "repo/repository.h"
#include "tuple/record.h"

namespace terids {

/// Pivot-converted coordinates of a probe record: coords[x][a] =
/// dist(r[A_x], piv_a[A_x]), or -1 when r[A_x] is missing. Computed once
/// per arrival and shared by the CDD-index and DR-index probes.
struct ProbeCoords {
  std::vector<std::vector<double>> coords;

  static ProbeCoords Compute(const Record& r, const Repository& repo);

  bool missing(int attr) const { return coords[attr].empty(); }
  double main(int attr) const { return coords[attr][0]; }
};

/// Per-attribute retrieval constraint for the DR-index: coordinate bands
/// against each pivot (index 0 = main pivot) derived from a CDD constraint
/// via the triangle inequality. An empty `pivot_bands` leaves the attribute
/// unconstrained.
struct AttrBand {
  std::vector<Interval> pivot_bands;
  Interval size_band = Interval::Empty();  // empty = unconstrained
};

/// The DR-index I_R (Section 5.1, Figure 3): an aR-tree over the samples of
/// the data repository converted to d-dimensional main-pivot coordinate
/// points, with keyword / auxiliary-distance / token-size aggregates.
class DrIndex {
 public:
  explicit DrIndex(const Repository* repo);

  /// (Re)builds the tree over all current repository samples. Pivots must
  /// be attached to the repository.
  void Build();

  /// Inserts one sample (dynamic repository maintenance, Section 5.5).
  void InsertSample(size_t sample_idx);

  /// Sample indices passing all band filters. This is the
  /// necessary-condition retrieval; callers verify exact constraints.
  std::vector<size_t> Retrieve(const std::vector<AttrBand>& bands) const;

  size_t size() const { return tree_.size(); }
  uint64_t last_query_leaves_visited() const {
    return tree_.last_query_leaves_visited;
  }

 private:
  ArTreeEntry MakeEntry(size_t sample_idx) const;

  const Repository* repo_;
  ArTree tree_;
};

}  // namespace terids

#endif  // TERIDS_INDEX_DR_INDEX_H_
