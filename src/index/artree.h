#ifndef TERIDS_INDEX_ARTREE_H_
#define TERIDS_INDEX_ARTREE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/interval.h"

namespace terids {

/// Aggregates carried by aR-tree nodes [20], merged bottom-up.
///
/// One concrete struct serves both index uses (Section 5.1):
///  * CDD-index leaves: `dep_interval` bounds the dependent constraint A_j.I
///    of the rules below; `aux_dist` bounds the distances from constant
///    constraints to the auxiliary pivots.
///  * DR-index leaves: `topic_mask` is the keyword Boolean vector;
///    `aux_dist` bounds sample-to-auxiliary-pivot distances;
///    `size_intervals` bounds token-set sizes.
struct NodeAggregates {
  uint64_t topic_mask = 0;
  Interval dep_interval = Interval::Empty();
  /// aux_dist[dim][a] bounds distances to auxiliary pivot a on dimension
  /// (attribute) dim. Ragged: attributes may have different pivot counts.
  std::vector<std::vector<Interval>> aux_dist;
  std::vector<Interval> size_intervals;

  void Merge(const NodeAggregates& other);
};

/// One indexed object: a d-dimensional box, an opaque payload id (rule index
/// or repository sample index), and its leaf-level aggregates.
struct ArTreeEntry {
  std::vector<Interval> box;
  int64_t payload = -1;
  NodeAggregates agg;
};

/// Aggregate R-tree over d-dimensional boxes.
///
/// Construction is bulk (k-d-style sort-tile-recurse); single insertions and
/// payload removals are supported for the dynamic-repository extension
/// (Section 5.5). Queries are visitor-driven: the caller's node predicate
/// sees the node's bounding box and merged aggregates and decides descent,
/// which is how all three pruning families (topic, distance band, size) are
/// expressed without specializing the tree.
class ArTree {
 public:
  struct NodeView {
    const std::vector<Interval>& box;
    const NodeAggregates& agg;
    bool is_leaf;
    int num_children;
  };

  using NodePredicate = std::function<bool(const NodeView&)>;
  using EntryVisitor = std::function<void(const ArTreeEntry&)>;

  explicit ArTree(int dims, int fanout = 16);

  /// Replaces the tree contents. Every entry's box must have `dims`
  /// dimensions.
  void BulkLoad(std::vector<ArTreeEntry> entries);

  /// Inserts a single entry (payloads must be unique across the tree).
  void Insert(ArTreeEntry entry);

  /// Removes the entry with this payload. Returns false if absent.
  bool Remove(int64_t payload);

  /// Depth-first traversal. `should_visit` gates every node (including the
  /// root); entries of visited leaves are passed to `on_entry`.
  void Query(const NodePredicate& should_visit,
             const EntryVisitor& on_entry) const;

  size_t size() const { return live_entries_; }
  int dims() const { return dims_; }
  /// Number of leaf nodes whose predicate passed in the last Query call
  /// (complexity accounting, Section 5.1).
  mutable uint64_t last_query_leaves_visited = 0;

 private:
  struct Node {
    bool leaf = true;
    int parent = -1;
    std::vector<Interval> box;
    NodeAggregates agg;
    std::vector<int> children;       // node ids (internal nodes)
    std::vector<int> entry_ids;      // indices into entries_ (leaves)
  };

  int BuildRec(std::vector<int>* entry_ids, size_t begin, size_t end, int dim,
               int parent);
  void RecomputeNode(int node_id);
  void RecomputePath(int node_id);
  void QueryRec(int node_id, const NodePredicate& should_visit,
                const EntryVisitor& on_entry) const;
  static void ExtendBox(std::vector<Interval>* box,
                        const std::vector<Interval>& with);

  int dims_;
  int fanout_;
  int root_ = -1;
  std::vector<Node> nodes_;
  std::vector<ArTreeEntry> entries_;
  std::vector<bool> entry_live_;
  size_t live_entries_ = 0;
  std::unordered_map<int64_t, int> payload_to_leaf_;
  std::unordered_map<int64_t, int> payload_to_entry_;
};

}  // namespace terids

#endif  // TERIDS_INDEX_ARTREE_H_
