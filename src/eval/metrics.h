#ifndef TERIDS_EVAL_METRICS_H_
#define TERIDS_EVAL_METRICS_H_

#include <vector>

#include "er/match_set.h"
#include "tuple/record.h"

namespace terids {

/// Precision / recall / F-score of a returned pair set against ground truth
/// (Equation 6).
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  double f_score = 0.0;
  size_t true_positives = 0;
  size_t returned = 0;
  size_t truth_size = 0;
};

PrecisionRecall ComputeFScore(const std::vector<MatchPair>& returned,
                              const std::vector<GroundTruthPair>& truth);

}  // namespace terids

#endif  // TERIDS_EVAL_METRICS_H_
