#ifndef TERIDS_UTIL_BITS_H_
#define TERIDS_UTIL_BITS_H_

#include <cstdint>

namespace terids {

/// Portable population count for C++17 (std::popcount is C++20).
inline int PopCount(uint32_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcount(x);
#else
  int n = 0;
  while (x != 0) {
    x &= x - 1;
    ++n;
  }
  return n;
#endif
}

/// 64-bit population count; the token-signature bound of the similarity
/// kernels (text/similarity_kernels.h) is one popcount per side plus one on
/// the AND.
inline int PopCount64(uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcountll(x);
#else
  int n = 0;
  while (x != 0) {
    x &= x - 1;
    ++n;
  }
  return n;
#endif
}

}  // namespace terids

#endif  // TERIDS_UTIL_BITS_H_
