#ifndef TERIDS_REPO_MMAP_SNAPSHOT_STORAGE_H_
#define TERIDS_REPO_MMAP_SNAPSHOT_STORAGE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "repo/repo_storage.h"
#include "repo/snapshot_format.h"
#include "text/token_dict.h"

namespace terids {

/// Read-mostly Repository backend over a build-once columnar snapshot file
/// (DESIGN.md §8), opened read-only via mmap.
///
/// The base image is immutable and served zero-copy from the mapping: the
/// numeric geometry tables (per-pivot distance columns, sorted main-pivot
/// coordinate lists, sample ValueIds, value frequencies), the domain token
/// columns (TokenSet views straight over the mapped arrays), and the
/// display texts (string_views over the mapped blob). The kernel pages the
/// data in on demand and can evict it under pressure — the path to
/// repositories larger than RAM.
///
/// v2 snapshots additionally decode *lazily*: Open validates the header
/// and the checksummed section TOC (O(header + TOC) bytes), and each
/// section — a domain, the pivot token sets, an attribute's geometry, the
/// sample table — is verified against its own checksum and materialized
/// under a std::once_flag on first touch. Concurrent readers may race the
/// first touch safely; a checksum or structure failure detected at that
/// point is fatal (the snapshot was validated as openable, so a bad
/// section is data corruption mid-run). SnapshotDecode::kEager forces
/// every section through the same decode at open, restoring the
/// v1-equivalent fail-at-open behavior; v1 files always decode eagerly.
///
/// Dynamic-repository writes (Section 5.5: the constraint imputer's
/// RegisterValue, AbsorbRepositoryBatch's AddSample) land in an in-memory
/// delta overlay: new values get ValueIds after the base domain, frequency
/// bumps on base values go to a side map, and coordinate-range scans merge
/// the base column with the overlay's sorted list in (coord, ValueId)
/// order — read results stay bit-identical to the in-memory oracle.
/// AttachPivots is not supported: the pivot geometry is baked into the
/// snapshot at write time. The write path is not thread-safe (unchanged);
/// only the lazy first-touch decode of the immutable base is.
class MmapSnapshotStorage final : public RepoStorage {
 public:
  /// Maps and validates `path` (magic, version, attribute count, TOC or
  /// payload checksum, token ids against `dict`). Returns InvalidArgument /
  /// FailedPrecondition with a precise reason on any mismatch. Under
  /// kLazy (v2 files only), per-section validation is deferred to first
  /// touch.
  static Result<std::unique_ptr<MmapSnapshotStorage>> Open(
      int num_attributes, const TokenDict* dict, const std::string& path,
      SnapshotDecode decode = SnapshotDecode::kLazy);

  ~MmapSnapshotStorage() override;

  MmapSnapshotStorage(const MmapSnapshotStorage&) = delete;
  MmapSnapshotStorage& operator=(const MmapSnapshotStorage&) = delete;

  const char* name() const override { return "mmap"; }

  // ---- Read path -------------------------------------------------------

  size_t domain_size(int attr) const override;
  const TokenSet& value_tokens(int attr, ValueId id) const override;
  std::string_view value_text(int attr, ValueId id) const override;
  int value_frequency(int attr, ValueId id) const override;
  ValueId FindValue(int attr, const TokenSet& tokens) const override;

  size_t num_samples() const override;
  const Record& sample(size_t i) const override;
  ValueId sample_value_id(size_t i, int attr) const override;

  bool has_pivots() const override { return has_pivots_; }
  int num_pivots(int attr) const override;
  const TokenSet& pivot_tokens(int attr, int pivot_idx) const override;
  double pivot_distance(int attr, int pivot_idx, ValueId vid) const override;
  void AppendValuesInCoordRange(int attr, const Interval& interval,
                                std::vector<ValueId>* out) const override;

  // ---- Write path (delta overlay) --------------------------------------

  ValueId RegisterValue(int attr, const TokenSet& tokens,
                        const std::string& text) override;
  void BumpFrequency(int attr, ValueId id) override;
  void AppendSample(const Record& record, std::vector<ValueId> vids) override;
  bool SupportsAttachPivots() const override { return false; }
  void AttachPivots(std::vector<AttributePivots> pivots) override;

 private:
  MmapSnapshotStorage() = default;

  Status MapFile(const std::string& path);
  Status Parse(int num_attributes, const TokenDict* dict,
               SnapshotDecode decode);
  Status ParseV1(const snapshot::Header& header);
  Status ParseToc(const snapshot::Header& header);
  void Unmap();

  /// One attribute's immutable base image. Everything except `size` is
  /// filled by the section decoders; `size` comes from the TOC (v2) or the
  /// eager parse (v1) so domain_size never forces a decode.
  struct BaseDomain {
    size_t size = 0;
    std::vector<TokenSet> tokens;  // views over the mapped token column
    const char* text_blob = nullptr;
    const uint64_t* text_offsets = nullptr;
    const int32_t* freqs = nullptr;
    std::unordered_multimap<uint64_t, ValueId> by_hash;  // built on demand
    // Pivot geometry (zero-copy columns; empty when !has_pivots_).
    std::vector<const double*> dists;  // dists[a][vid]
    const double* coord_keys = nullptr;
    const uint32_t* coord_vids = nullptr;
  };

  /// One attribute's dynamic delta.
  struct DomainOverlay {
    AttributeDomain extra;  // local ids; global id = base.size + local
    std::unordered_map<ValueId, int> base_freq_delta;
    std::vector<std::vector<double>> dists;  // dists[a][local id]
    std::vector<std::pair<double, ValueId>> sorted_coords;  // global ids
  };

  // ---- v2 section decode (see DESIGN.md §8) ----------------------------
  // Decode* verify the section checksum and materialize into the mutable
  // base structures; they are called either eagerly at open (errors become
  // the Open Status) or from the Ensure* wrappers under a once_flag
  // (errors abort: first-touch corruption). Ensure* are no-ops once
  // decoded_all_ is set (v1 files and eager opens).

  Status DecodeDomain(int attr) const;
  Status DecodePivotTokens() const;
  Status DecodeGeometry(int attr) const;
  Status DecodeSamples() const;
  void BuildFindIndex(int attr) const;

  void EnsureDomain(int attr) const;
  void EnsureFindIndex(int attr) const;
  void EnsurePivotTokens() const;
  void EnsureGeometry(int attr) const;
  void EnsureSamples() const;

  /// Shared block parsers: the byte layout of a v2 domain/samples section
  /// equals the corresponding v1 payload block. ParseDomainBlock reports
  /// the parsed domain size through `dom_size_out` instead of writing
  /// BaseDomain::size — under lazy decode that field is read concurrently
  /// by domain_size() and must only ever be written at open.
  Status ParseDomainBlock(snapshot::Cursor* cur, int attr,
                          uint64_t* dom_size_out) const;
  Status ParseSamplesBlock(snapshot::Cursor* cur) const;

  // Mapping ownership: exactly one of map_base_ (mmap) or heap_ (portable
  // read fallback) backs data_.
  void* map_base_ = nullptr;
  size_t map_len_ = 0;
  std::vector<char> heap_;
  const char* data_ = nullptr;
  size_t size_ = 0;
  const char* payload_ = nullptr;
  size_t payload_len_ = 0;

  int d_ = 0;
  bool has_pivots_ = false;
  uint64_t dict_tokens_ = 0;
  std::vector<int> num_pivots_;  // per attribute; known without decode

  // v2 TOC, validated at open; entries indexed by role.
  std::vector<snapshot::SectionEntry> toc_domain_;    // [d_]
  snapshot::SectionEntry toc_pivot_tokens_ = {};
  std::vector<snapshot::SectionEntry> toc_geometry_;  // [d_]
  snapshot::SectionEntry toc_samples_ = {};

  // Lazily-filled base image. `mutable` + once_flags: the base is
  // logically immutable, its materialization is just deferred.
  //
  // Locking model (DESIGN.md §12): the lazy decode state is guarded by the
  // once_flags below, not by a Mutex — std::call_once is the one primitive
  // here the capability analysis cannot model, so the discipline is
  // structural and narrow: Decode*/BuildFindIndex write these members
  // exclusively from inside their call_once; every reader calls the
  // matching Ensure* first; and after the call_once returns the base is
  // read-only forever. call_once never runs user code while holding a
  // ranked lock (Ensure* are called from read accessors only), so it
  // cannot participate in a rank cycle. The write path (overlay_ etc.)
  // stays single-threaded by contract, unchanged.
  mutable std::vector<BaseDomain> base_;
  mutable std::vector<AttributePivots> pivots_;
  mutable std::vector<Record> base_records_;
  mutable const uint32_t* base_sample_vids_ = nullptr;  // row-major [i*d_+x]
  size_t base_samples_ = 0;

  bool decoded_all_ = false;  // v1 file or eager open: Ensure* are no-ops
  // std::once_flag is immovable, so the per-attribute flags live in
  // fixed arrays allocated once at open rather than inside BaseDomain.
  std::unique_ptr<std::once_flag[]> domain_once_;
  std::unique_ptr<std::once_flag[]> find_once_;
  std::unique_ptr<std::once_flag[]> geometry_once_;
  mutable std::once_flag pivot_tokens_once_;
  mutable std::once_flag samples_once_;

  std::vector<DomainOverlay> overlay_;
  std::vector<Record> extra_records_;
  std::vector<std::vector<ValueId>> extra_sample_vids_;
};

}  // namespace terids

#endif  // TERIDS_REPO_MMAP_SNAPSHOT_STORAGE_H_
