#ifndef TERIDS_EXEC_REFINEMENT_EXECUTOR_H_
#define TERIDS_EXEC_REFINEMENT_EXECUTOR_H_

#include <memory>
#include <vector>

#include "er/pruning.h"
#include "exec/scheduler.h"
#include "exec/thread_pool.h"
#include "stream/sliding_window.h"

namespace terids {

/// Parallel evaluation of the post-candidate-generation pair cascade
/// (Theorems 4.1-4.4 plus exact refinement), the embarrassingly parallel
/// part of the arrival pipeline: every pair evaluation reads only immutable
/// tuple state and the repository, so pairs shard freely across workers.
///
/// Determinism contract: `Run` fills `evaluations[i]` for `tasks[i]` — each
/// worker owns a disjoint set of evaluation slots and writes only those, so
/// the result is independent of scheduling. The caller folds the per-pair
/// evaluations into PruneStats / the match set in task (candidate) order,
/// which reproduces the sequential loop exactly.
///
/// Before fanning out, the parallel path runs the batched signature
/// prefilter (SigFilterCandidates, DESIGN.md §11): one SoA popcount sweep
/// over the candidate list classifies tasks as merge-capable ("heavy") or
/// provably merge-free ("light" — topic-killed or signature-rejected
/// single-instance pairs), and heavy tasks are sharded finely while light
/// ones go into 8x coarser shards. The prefilter decides placement only —
/// every task still runs the unchanged Evaluate — so outputs and stats are
/// bit-identical with the prefilter active, inactive (signature_filter
/// off), or on the sequential path (which never runs it).
///
/// Locking model (DESIGN.md §12): the executor itself holds no mutex. Task
/// inputs are immutable for the duration of Run, each worker writes only
/// its disjoint evaluation slots (plus thread_local scratch), and the
/// synchronization lives entirely inside the executor it dispatches on —
/// the private pool's kThreadPool mutex or the shared scheduler's
/// kScheduler mutex — whose fork/join barrier publishes the slots back to
/// the caller.
class RefinementExecutor {
 public:
  /// One pair to evaluate: an arriving probe tuple against one window
  /// candidate. Pointees must stay alive and unmodified for the duration of
  /// Run (the batched pipeline holds shared_ptrs for evicted candidates).
  struct Task {
    const ImputedTuple* probe = nullptr;
    const TopicQuery::TupleTopic* probe_topic = nullptr;
    const WindowTuple* candidate = nullptr;
  };

  /// Legacy mode: a private ThreadPool of `num_threads` workers;
  /// `num_threads` <= 1 evaluates inline on the caller (no pool).
  explicit RefinementExecutor(int num_threads);
  /// Unified mode: no private pool — Run fans out as kRefine work items on
  /// `scheduler` (not owned, must outlive the executor; DESIGN.md §10).
  explicit RefinementExecutor(Scheduler* scheduler);
  ~RefinementExecutor();

  /// Evaluates a single pair — the unit of work every worker runs, also
  /// usable directly by the sequential refinement loop (no task vector, no
  /// dispatch). `signature_filter` enables the signature-bounded Jaccard
  /// kernel inside refinement (verdicts identical either way).
  static PairEvaluation Evaluate(const Task& task, bool use_prunings,
                                 bool signature_filter, double gamma,
                                 double alpha);

  /// Fan-out width Run shards tasks for: the private pool's concurrency in
  /// legacy mode, the shared scheduler's (workers + caller) in unified mode.
  int num_threads() const {
    return pool_ != nullptr ? pool_->concurrency() : scheduler_->concurrency();
  }

  /// Evaluates every task. With `use_prunings` the full cascade runs
  /// (EvaluatePair); without it the exact probability is always computed,
  /// reproducing the unpruned baselines. `evaluations` is resized to
  /// `tasks.size()`.
  void Run(const std::vector<Task>& tasks, bool use_prunings,
           bool signature_filter, double gamma, double alpha,
           std::vector<PairEvaluation>* evaluations);

 private:
  // Exactly one of the two is set (legacy pool vs. shared scheduler).
  std::unique_ptr<ThreadPool> pool_;
  Scheduler* scheduler_ = nullptr;
};

}  // namespace terids

#endif  // TERIDS_EXEC_REFINEMENT_EXECUTOR_H_
