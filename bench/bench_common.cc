#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "datagen/profiles.h"

namespace terids {
namespace bench {

double EnvScale() {
  const char* env = std::getenv("TERIDS_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

ExperimentParams BaseParams(const std::string& dataset) {
  ExperimentParams params;
  // Per-dataset size scale: preserves the relative ordering of Table 4
  // while keeping the one-core suite runtime bounded. Songs (1M tuples in
  // the paper) is scaled hardest.
  double scale = 0.3;
  if (dataset == "EBooks") scale = 0.1;
  if (dataset == "Songs") scale = 0.004;
  params.scale = scale * EnvScale();
  params.w = static_cast<int>(200 * EnvScale());  // paper default w = 1000
  if (params.w < 40) params.w = 40;
  params.max_arrivals = 4 * params.w;
  return params;
}

const std::vector<std::string>& AllDatasets() {
  static const std::vector<std::string>* kDatasets =
      new std::vector<std::string>{"Citations", "Anime", "Bikes", "EBooks",
                                   "Songs"};
  return *kDatasets;
}

const std::vector<PipelineKind>& AllPipelines() {
  static const std::vector<PipelineKind>* kKinds =
      new std::vector<PipelineKind>{
          PipelineKind::kTerIds,    PipelineKind::kIjGer,
          PipelineKind::kCddEr,     PipelineKind::kDdEr,
          PipelineKind::kEditingEr, PipelineKind::kConstraintEr};
  return *kKinds;
}

const std::vector<PipelineKind>& AccuracyPipelines() {
  // Ij+GER and CDD+ER share TER-iDS's imputation and therefore its
  // F-score; the paper omits them from accuracy plots for the same reason.
  static const std::vector<PipelineKind>* kKinds =
      new std::vector<PipelineKind>{PipelineKind::kTerIds, PipelineKind::kDdEr,
                                    PipelineKind::kEditingEr,
                                    PipelineKind::kConstraintEr};
  return *kKinds;
}

void PrintHeader(const std::string& figure, const std::string& title,
                 const ExperimentParams& params) {
  std::printf("==== %s: %s ====\n", figure.c_str(), title.c_str());
  std::printf(
      "defaults (Table 5, scaled): alpha=%.1f rho=%.1f xi=%.1f eta=%.1f "
      "w=%d m=%d scale=%.3f arrivals=%d bench_scale=%.2f\n",
      params.alpha, params.rho, params.xi, params.eta, params.w, params.m,
      params.scale, params.max_arrivals, EnvScale());
}

namespace {

void Sweep(const std::string& figure, const std::string& param_name,
           const std::vector<double>& values, const ParamSetter& setter,
           const std::vector<PipelineKind>& kinds, bool report_time) {
  ExperimentParams base = BaseParams("Citations");
  PrintHeader(figure,
              (report_time ? "wall clock time (ms/arrival) vs "
                           : "F-score vs ") +
                  param_name,
              base);
  for (const std::string& dataset : AllDatasets()) {
    std::printf("\n-- %s --\n%-10s", dataset.c_str(), "pipeline");
    for (double v : values) {
      std::printf(" %s=%-8.3g", param_name.c_str(), v);
    }
    std::printf("\n");
    // One experiment per swept value (dataset contents and rules depend on
    // eta / scale / xi), shared across pipelines for comparability.
    std::vector<std::unique_ptr<Experiment>> experiments;
    for (double v : values) {
      ExperimentParams params = BaseParams(dataset);
      // Sweeps multiply 5-6 values x 5 datasets x 6 pipelines; shrink the
      // per-point workload so a full figure stays in the minutes range on
      // one core (the parameter setter below may still override w).
      params.w = std::min(params.w, 120);
      params.max_arrivals = 3 * params.w;
      setter(&params, v);
      experiments.push_back(
          std::make_unique<Experiment>(ProfileByName(dataset), params));
    }
    for (PipelineKind kind : kinds) {
      std::printf("%-10s", PipelineKindName(kind));
      for (auto& experiment : experiments) {
        PipelineRun run = experiment->Run(kind);
        std::printf(" %-11.4f", report_time ? 1e3 * run.avg_arrival_seconds
                                            : run.accuracy.f_score);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf("\n");
}

}  // namespace

void TimeSweep(const std::string& figure, const std::string& param_name,
               const std::vector<double>& values, const ParamSetter& setter,
               const std::vector<PipelineKind>& kinds) {
  Sweep(figure, param_name, values, setter, kinds, /*report_time=*/true);
}

void FscoreSweep(const std::string& figure, const std::string& param_name,
                 const std::vector<double>& values, const ParamSetter& setter,
                 const std::vector<PipelineKind>& kinds) {
  Sweep(figure, param_name, values, setter, kinds, /*report_time=*/false);
}

}  // namespace bench
}  // namespace terids
